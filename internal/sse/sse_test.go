package sse

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/tensor"
)

// synthInput builds a small device with physically-shaped Green's function
// tensors: anti-Hermitian per-atom blocks with magnitudes around scale.
func synthInput(t testing.TB, scale float64) *Input {
	t.Helper()
	p := device.TestParams(12, 3, 2)
	p.NE = 10
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	fillAntiHermitian(rng, gl.Data, p.Norb, scale)
	fillAntiHermitian(rng, gg.Data, p.Norb, scale)
	nbp1 := dev.MaxNb() + 1
	dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	fillAntiHermitian(rng, dl.Data, device.N3D, scale)
	fillAntiHermitian(rng, dg.Data, device.N3D, scale)
	return &Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
}

// fillAntiHermitian fills consecutive n×n blocks with anti-Hermitian values
// (Mᴴ = −M), the structure of physical G≷ and D≷ blocks.
func fillAntiHermitian(rng *rand.Rand, data []complex128, n int, scale float64) {
	bl := n * n
	for o := 0; o+bl <= len(data); o += bl {
		for i := 0; i < n; i++ {
			data[o+i*n+i] = complex(0, scale*rng.NormFloat64())
			for j := i + 1; j < n; j++ {
				v := complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
				data[o+i*n+j] = v
				data[o+j*n+i] = -complex(real(v), -imag(v))
			}
		}
	}
}

func maxTensorDiff(a, b []complex128) (abs, rel float64) {
	var mx, den float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
		if m := cmplx.Abs(a[i]); m > den {
			den = m
		}
	}
	if den == 0 {
		return mx, 0
	}
	return mx, mx / den
}

func TestDaCeMatchesOMEN(t *testing.T) {
	in := synthInput(t, 1)
	omen := OMEN{}.Compute(in)
	dace := DaCe{}.Compute(in)

	if _, rel := maxTensorDiff(omen.SigL.Data, dace.SigL.Data); rel > 1e-10 {
		t.Fatalf("SigL mismatch: rel %g", rel)
	}
	if _, rel := maxTensorDiff(omen.SigG.Data, dace.SigG.Data); rel > 1e-10 {
		t.Fatalf("SigG mismatch: rel %g", rel)
	}
	if _, rel := maxTensorDiff(omen.PiL.Data, dace.PiL.Data); rel > 1e-10 {
		t.Fatalf("PiL mismatch: rel %g", rel)
	}
	if _, rel := maxTensorDiff(omen.PiG.Data, dace.PiG.Data); rel > 1e-10 {
		t.Fatalf("PiG mismatch: rel %g", rel)
	}
}

func TestDaCeUsesFewerMultiplications(t *testing.T) {
	in := synthInput(t, 1)
	omen := OMEN{}.Compute(in)
	dace := DaCe{}.Compute(in)
	if omen.Stats.MatMuls <= dace.Stats.MatMuls {
		t.Fatalf("expected OMEN (%d matmuls) > DaCe (%d matmuls)",
			omen.Stats.MatMuls, dace.Stats.MatMuls)
	}
	ratio := float64(omen.Stats.MatMuls) / float64(dace.Stats.MatMuls)
	// The algebraic regrouping should save at least the paper's ~2×.
	if ratio < 2 {
		t.Fatalf("multiplication reduction only %.2fx", ratio)
	}
	t.Logf("matmul reduction: %.1fx (OMEN %d, DaCe %d)", ratio, omen.Stats.MatMuls, dace.Stats.MatMuls)
}

func TestSSEOutputNonZero(t *testing.T) {
	in := synthInput(t, 1)
	out := DaCe{}.Compute(in)
	var nz int
	for _, v := range out.SigL.Data {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("SigL is identically zero")
	}
	nz = 0
	for _, v := range out.PiL.Data {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("PiL is identically zero")
	}
}

func TestSSEDeterministic(t *testing.T) {
	in := synthInput(t, 1)
	a := DaCe{}.Compute(in)
	b := DaCe{}.Compute(in)
	if abs, _ := maxTensorDiff(a.SigL.Data, b.SigL.Data); abs != 0 {
		t.Fatal("DaCe kernel is not deterministic")
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	in := synthInput(t, 1)
	par := DaCe{}.Compute(in)
	old := SetWorkers(1)
	seq := DaCe{}.Compute(in)
	SetWorkers(old)
	if abs, _ := maxTensorDiff(par.SigL.Data, seq.SigL.Data); abs != 0 {
		t.Fatal("parallel and sequential SSE differ")
	}
	if abs, _ := maxTensorDiff(par.PiG.Data, seq.PiG.Data); abs != 0 {
		t.Fatal("parallel and sequential Π differ")
	}
}

func TestMixedNormalizedAccuracy(t *testing.T) {
	// Physical Green's functions have small magnitudes; fp16 only works
	// with the normalization factors, as Fig. 7 demonstrates.
	in := synthInput(t, 4e-6)
	ref := DaCe{}.Compute(in)
	mixed := Mixed{Normalize: true}.Compute(in)

	relErr := func(a, b []complex128) float64 {
		var num, den float64
		for i := range a {
			num += cmplx.Abs(a[i] - b[i])
			den += cmplx.Abs(b[i])
		}
		return num / den
	}
	rel := relErr(mixed.SigL.Data, ref.SigL.Data)
	if rel > 0.01 {
		t.Fatalf("normalized mixed precision too inaccurate: rel %g", rel)
	}

	raw := Mixed{Normalize: false}.Compute(in)
	relRaw := relErr(raw.SigL.Data, ref.SigL.Data)
	if relRaw < 3*rel {
		t.Fatalf("expected unnormalized to be much worse: %g vs %g", relRaw, rel)
	}
	t.Logf("mixed-precision rel error: normalized %.2e, unnormalized %.2e", rel, relRaw)
}

func TestMixedNamesDistinct(t *testing.T) {
	if (Mixed{Normalize: true}).Name() == (Mixed{Normalize: false}).Name() {
		t.Fatal("kernel names must distinguish normalization")
	}
	if (OMEN{}).Name() == (DaCe{}).Name() {
		t.Fatal("kernel names must be distinct")
	}
}

func TestEnergyEdgeClamping(t *testing.T) {
	// Terms with E±ω off the grid are dropped; the self-energy at the grid
	// edges must still be finite and the kernels must agree there too.
	in := synthInput(t, 1)
	p := in.Dev.P
	omen := OMEN{}.Compute(in)
	dace := DaCe{}.Compute(in)
	for _, ie := range []int{0, p.NE - 1} {
		for a := 0; a < p.Na; a++ {
			bo := omen.SigL.Block(0, ie, a)
			bd := dace.SigL.Block(0, ie, a)
			for e := range bo {
				if cmplx.IsNaN(bo[e]) || cmplx.IsInf(bo[e]) {
					t.Fatal("edge block contains NaN/Inf")
				}
				if cmplx.Abs(bo[e]-bd[e]) > 1e-10*(1+cmplx.Abs(bo[e])) {
					t.Fatalf("edge mismatch at ie=%d", ie)
				}
			}
		}
	}
}

func TestScalingLinearity(t *testing.T) {
	// Σ is bilinear in (G, D): scaling G≷ by α and D≷ by β scales Σ by
	// α·β and Π by α². A cheap global correctness property.
	in := synthInput(t, 1)
	base := DaCe{}.Compute(in)

	alpha, beta := 2.0, 3.0
	in2 := &Input{Dev: in.Dev, GL: in.GL.Clone(), GG: in.GG.Clone(), DL: in.DL.Clone(), DG: in.DG.Clone()}
	for i := range in2.GL.Data {
		in2.GL.Data[i] *= complex(alpha, 0)
		in2.GG.Data[i] *= complex(alpha, 0)
	}
	for i := range in2.DL.Data {
		in2.DL.Data[i] *= complex(beta, 0)
		in2.DG.Data[i] *= complex(beta, 0)
	}
	scaled := DaCe{}.Compute(in2)
	for i := range base.SigL.Data {
		want := base.SigL.Data[i] * complex(alpha*beta, 0)
		if cmplx.Abs(scaled.SigL.Data[i]-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatal("Σ does not scale bilinearly")
		}
	}
	for i := range base.PiL.Data {
		want := base.PiL.Data[i] * complex(alpha*alpha, 0)
		if cmplx.Abs(scaled.PiL.Data[i]-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatal("Π does not scale quadratically in G")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	in := synthInput(t, 1)
	for _, k := range []Kernel{OMEN{}, DaCe{}, Mixed{Normalize: true}} {
		out := k.Compute(in)
		if out.Stats.MatMuls <= 0 || out.Stats.Flops <= 0 || out.Stats.BytesMoved <= 0 {
			t.Fatalf("%s: stats not populated: %+v", k.Name(), out.Stats)
		}
		if out.Stats.Flops != out.Stats.MatMuls*8*int64(in.GL.Norb*in.GL.Norb*in.GL.Norb) {
			// Flops must follow the 8n³-per-multiplication accounting.
			t.Fatalf("%s: flop accounting inconsistent", k.Name())
		}
	}
}

func TestOperationalIntensityIsMemoryBound(t *testing.T) {
	// The roofline argument (Fig. 10): SSE's useful flops per byte moved
	// must be low (memory-bound), far below the RGF's O(n) intensity.
	in := synthInput(t, 1)
	out := DaCe{}.Compute(in)
	oi := float64(out.Stats.Flops+out.Stats.ScalarOps) / float64(out.Stats.BytesMoved)
	if math.IsNaN(oi) || oi <= 0 {
		t.Fatal("invalid operational intensity")
	}
	t.Logf("DaCe SSE operational intensity: %.2f flop/byte", oi)
}

func TestSavingsGrowWithAccuracy(t *testing.T) {
	// §5.3: the multiplication reduction of the transformed kernel comes
	// from reusing the ∇H·G transients across the (qz, ω) stencil, so the
	// matmul ratio OMEN/DaCe must grow with the number of phonon
	// frequencies — the same trend as the paper's 2NqzNω/(NqzNω+1) model.
	ratioAt := func(nw int) float64 {
		p := device.TestParams(12, 3, 2)
		p.NE = 10
		p.Nomega = nw
		dev, err := device.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
		gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
		nbp1 := dev.MaxNb() + 1
		dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
		dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
		fillAntiHermitian(rng, gl.Data, p.Norb, 1)
		fillAntiHermitian(rng, gg.Data, p.Norb, 1)
		fillAntiHermitian(rng, dl.Data, device.N3D, 1)
		fillAntiHermitian(rng, dg.Data, device.N3D, 1)
		in := &Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
		o := OMEN{}.Compute(in)
		d := DaCe{}.Compute(in)
		return float64(o.Stats.MatMuls) / float64(d.Stats.MatMuls)
	}
	r2, r6 := ratioAt(2), ratioAt(6)
	t.Logf("matmul reduction: %.1fx at Nω=2, %.1fx at Nω=6", r2, r6)
	if r6 <= r2 {
		t.Fatalf("savings should grow with Nω: %.1f vs %.1f", r2, r6)
	}
}

func TestRestrictedDaCePartitionsSum(t *testing.T) {
	// The tile restriction must partition the work exactly: summing the
	// outputs of disjoint (atoms × energies) tiles reproduces the full
	// kernel output — the invariant the distributed decomposition needs.
	in := synthInput(t, 1)
	full := DaCe{}.Compute(in)
	na, ne := in.GL.Na, in.GL.NE
	sumL := make([]complex128, len(full.SigL.Data))
	sumPi := make([]complex128, len(full.PiL.Data))
	for _, tile := range [][4]int{
		{0, na / 2, 0, ne / 2}, {0, na / 2, ne / 2, ne},
		{na / 2, na, 0, ne / 2}, {na / 2, na, ne / 2, ne},
	} {
		atoms := make([]int, 0)
		for a := tile[0]; a < tile[1]; a++ {
			atoms = append(atoms, a)
		}
		out := DaCe{Atoms: atoms, ELo: tile[2], EHi: tile[3]}.Compute(in)
		for i, v := range out.SigL.Data {
			sumL[i] += v
		}
		for i, v := range out.PiL.Data {
			sumPi[i] += v
		}
	}
	if abs, _ := maxTensorDiff(sumL, full.SigL.Data); abs > 1e-10 {
		t.Fatalf("tile sum does not reproduce Σ<: %g", abs)
	}
	if abs, _ := maxTensorDiff(sumPi, full.PiL.Data); abs > 1e-10 {
		t.Fatalf("tile sum does not reproduce Π<: %g", abs)
	}
}

func TestMaskedOMENPartitionsSum(t *testing.T) {
	// Same invariant for the pair mask of the momentum×energy scheme.
	in := synthInput(t, 1)
	full := OMEN{}.Compute(in)
	sum := make([]complex128, len(full.SigG.Data))
	sumPi := make([]complex128, len(full.PiG.Data))
	for part := 0; part < 3; part++ {
		p := part
		out := OMEN{Mask: func(ik, ie int) bool { return (ik*in.GL.NE+ie)%3 == p }}.Compute(in)
		for i, v := range out.SigG.Data {
			sum[i] += v
		}
		for i, v := range out.PiG.Data {
			sumPi[i] += v
		}
	}
	if abs, _ := maxTensorDiff(sum, full.SigG.Data); abs > 1e-10 {
		t.Fatalf("mask partition does not reproduce Σ>: %g", abs)
	}
	if abs, _ := maxTensorDiff(sumPi, full.PiG.Data); abs > 1e-10 {
		t.Fatalf("mask partition does not reproduce Π>: %g", abs)
	}
}
