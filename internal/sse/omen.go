package sse

import (
	"runtime"
	"sync/atomic"

	"repro/internal/linalg"
)

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// OMEN is the baseline kernel: the straightforward translation of
// Eqs. (2)–(3), evaluating two fresh small matrix multiplications for
// every (kz, E, qz, ω, a, b, i, j) tuple, exactly as the original OMEN
// electron–phonon model does before the data-centric transformations.
//
// Mask optionally restricts the kernel to a subset of electron
// (kz, E) pairs — the unit of work the original momentum×energy domain
// decomposition distributes (Fig. 5, left). With a mask, Σ≷ is produced
// only for masked pairs and Π≷ holds the partial sums over masked pairs;
// summing the outputs over a partition of the mask reproduces the full
// result.
type OMEN struct {
	Mask func(ik, ie int) bool
}

// Name implements Kernel.
func (OMEN) Name() string { return "OMEN" }

// Compute implements Kernel.
func (o OMEN) Compute(in *Input) *Output {
	out := newOutput(in)
	masked := func(ik, ie int) bool { return o.Mask != nil && !o.Mask(ik, ie) }
	p := in.Dev.P
	norb := p.Norb
	nw := p.Nomega
	nkz, ne := p.Nkz, p.NE
	prefS := prefSigma(p)
	prefP := prefPi(p)
	var matmuls, scalarOps atomic.Int64

	parallelAtoms(p.Na, func(a int) {
		var wl, wg [9]complex128
		gmix := linalg.New(norb, norb)
		tmp := linalg.New(norb, norb)
		var localMuls, localScalar int64
		for slotAB, b := range in.Dev.Neigh[a] {
			slotBA := in.Dev.NeighbourSlot(b, a)
			// Σ≷_aa: loop the full stencil naively.
			for ik := 0; ik < nkz; ik++ {
				for iq := 0; iq < nkz; iq++ {
					ikq := ((ik-iq)%nkz + nkz) % nkz
					for m := 1; m <= nw; m++ {
						dTilde(in.DL, in.DG, iq, m-1, a, b, slotAB, slotBA, &wl, &wg)
						for ie := 0; ie < ne; ie++ {
							if masked(ik, ie) {
								continue
							}
							for i := 0; i < 3; i++ {
								gih := in.Dev.GradH(a, b, i)
								for j := 0; j < 3; j++ {
									gjh := in.Dev.GradH(b, a, j)
									wle := wl[i*3+j]
									wge := wg[i*3+j]
									// Lesser: G<(E−ω)·D̃< + G<(E+ω)·D̃>.
									gmix.Zero()
									n := 0
									if ie-m >= 0 {
										linalg.AXPY(gmix, wle, in.GL.Mat(ikq, ie-m, b))
										n++
									}
									if ie+m < ne {
										linalg.AXPY(gmix, wge, in.GL.Mat(ikq, ie+m, b))
										n++
									}
									if n > 0 {
										linalg.GEMM(1, gih, linalg.NoTrans, gmix, linalg.NoTrans, 0, tmp)
										linalg.GEMM(prefS, tmp, linalg.NoTrans, gjh, linalg.NoTrans, 1, out.SigL.Mat(ik, ie, a))
										localMuls += 2
										localScalar += int64(n) * int64(norb*norb) * 8
									}
									// Greater: G>(E+ω)·D̃< + G>(E−ω)·D̃>.
									gmix.Zero()
									n = 0
									if ie+m < ne {
										linalg.AXPY(gmix, wle, in.GG.Mat(ikq, ie+m, b))
										n++
									}
									if ie-m >= 0 {
										linalg.AXPY(gmix, wge, in.GG.Mat(ikq, ie-m, b))
										n++
									}
									if n > 0 {
										linalg.GEMM(1, gih, linalg.NoTrans, gmix, linalg.NoTrans, 0, tmp)
										linalg.GEMM(prefS, tmp, linalg.NoTrans, gjh, linalg.NoTrans, 1, out.SigG.Mat(ik, ie, a))
										localMuls += 2
										localScalar += int64(n) * int64(norb*norb) * 8
									}
								}
							}
						}
					}
				}
			}
		}
		// Π≷: diagonal slot (l over neighbours) and neighbour slots (l=b).
		x := linalg.New(norb, norb)
		y := linalg.New(norb, norb)
		x2 := linalg.New(norb, norb)
		y2 := linalg.New(norb, norb)
		for iq := 0; iq < nkz; iq++ {
			for m := 1; m <= nw; m++ {
				for slot := 0; slot <= len(in.Dev.Neigh[a]); slot++ {
					var ls []int // the l atoms traced for this Π_ab block
					if slot == 0 {
						ls = in.Dev.Neigh[a]
					} else {
						ls = in.Dev.Neigh[a][slot-1 : slot]
					}
					piL := out.PiL.Block(iq, m-1, a, slot)
					piG := out.PiG.Block(iq, m-1, a, slot)
					for _, l := range ls {
						for ik := 0; ik < nkz; ik++ {
							ikpq := (ik + iq) % nkz
							for ie := 0; ie+m < ne; ie++ {
								// Ownership of a Π contribution follows the
								// upper pair (kz+qz, E+ω): in the distributed
								// momentum×energy decomposition that rank
								// already received G(kz, E) via the Σ
								// exchange, so no extra transfer is needed.
								if masked(ikpq, ie+m) {
									continue
								}
								for i := 0; i < 3; i++ {
									gil := in.Dev.GradH(l, a, i)
									for j := 0; j < 3; j++ {
										gjl := in.Dev.GradH(a, l, j)
										// tr[∇iH_la·G≷_aa(E+ω)·∇jH_al·G≶_ll(E)]
										linalg.GEMM(1, gil, linalg.NoTrans, in.GL.Mat(ikpq, ie+m, a), linalg.NoTrans, 0, x)
										linalg.GEMM(1, gjl, linalg.NoTrans, in.GG.Mat(ik, ie, l), linalg.NoTrans, 0, y)
										piL[i*3+j] += prefP * traceProduct(x, y)
										linalg.GEMM(1, gil, linalg.NoTrans, in.GG.Mat(ikpq, ie+m, a), linalg.NoTrans, 0, x2)
										linalg.GEMM(1, gjl, linalg.NoTrans, in.GL.Mat(ik, ie, l), linalg.NoTrans, 0, y2)
										piG[i*3+j] += prefP * traceProduct(x2, y2)
										localMuls += 4
									}
								}
							}
						}
					}
				}
			}
		}
		matmuls.Add(localMuls)
		scalarOps.Add(localScalar)
	})

	n3 := int64(norb) * int64(norb) * int64(norb)
	out.Stats = Stats{
		MatMuls:   matmuls.Load(),
		Flops:     matmuls.Load() * 8 * n3,
		ScalarOps: scalarOps.Load(),
		BytesMoved: in.GL.Bytes() + in.GG.Bytes() + in.DL.Bytes() + in.DG.Bytes() +
			out.SigL.Bytes() + out.SigG.Bytes() + out.PiL.Bytes() + out.PiG.Bytes(),
	}
	return out
}

// traceProduct returns tr(X·Y) without forming the product matrix.
func traceProduct(x, y *linalg.Matrix) complex128 {
	var t complex128
	n := x.Rows
	for r := 0; r < n; r++ {
		xr := x.Row(r)
		for s := 0; s < n; s++ {
			t += xr[s] * y.Data[s*n+r]
		}
	}
	return t
}
