// Package sse evaluates the electron–phonon scattering self-energies — the
// SSE phase of the paper (Eqs. 2–3) and the subject of its headline
// dataflow transformations (§5.3, Fig. 6).
//
// Three kernels compute the identical mathematical result:
//
//   - OMEN:  the original schedule — an 8-deep loop nest over
//     (kz, E, qz, ω, a, b, i, j) performing two fresh Norb×Norb matrix
//     multiplications per term.
//   - DaCe:  the data-centric schedule — map fission isolates the
//     ∇H·G≷ products into reusable transients, the ω accumulation becomes
//     scalar AXPYs over a constant-stride layout, and the final
//     multiplications run as strided-batched SBSMM with a fixed right-hand
//     operand. Multiplication count drops by ~6·Nω (the paper's ½-flop
//     algebraic regrouping plus transient reuse).
//   - Mixed: the DaCe schedule with the multiplications executed in
//     emulated half precision (normalized split-complex inputs, fp64
//     accumulation), modelling the Tensor-Core path of §5.4.
//
// The discretized equations, folded onto positive frequencies using the
// bosonic identity D≷(−ω) = D≶(ω):
//
//	Σ≷_aa(kz,E) = i·(dE/2π)/Nqz · Σ_{qz,m,b,i,j} ∇iH_ab ·
//	   [ G≷_bb(kz−qz, E∓ω_m)·D̃≷_ij(qz,ω_m)
//	   + G≷_bb(kz−qz, E±ω_m)·D̃≶_ij(qz,ω_m) ] · ∇jH_ba
//
//	Π≷_ab,ij(qz,ω) = −i·(dE/2π)/Nkz · Σ_{kz,n,l} tr[ ∇iH_la ·
//	   G≷_aa(kz+qz, E_n+ω) · ∇jH_al · G≶_ll(kz, E_n) ]
//
// with D̃_ij = D_ba,ij − D_bb,ij − D_aa,ij + D_ab,ij (the four-block phonon
// displacement combination of Eq. 2) and l = b for a ≠ b, l ∈ neigh(a) for
// the diagonal blocks. Energy shifts that leave the grid are dropped by
// every kernel identically.
package sse

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/tensor"
)

// RandomInput synthesizes Gaussian Green's-function tensors shaped for
// dev — the standard workload of the exchange-level experiments
// (decomposition studies, wire-format benchmarks), which move data
// without caring where it came from. Deterministic in seed.
func RandomInput(dev *device.Device, seed int64) *Input {
	p := dev.P
	rng := rand.New(rand.NewSource(seed))
	gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	nbp1 := dev.MaxNb() + 1
	dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	for _, buf := range [][]complex128{gl.Data, gg.Data, dl.Data, dg.Data} {
		for i := range buf {
			buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return &Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
}

// Input bundles the Green's functions entering an SSE evaluation.
type Input struct {
	Dev    *device.Device
	GL, GG *tensor.Electron // electron G≷ [Nkz, NE, Na, Norb, Norb]
	DL, DG *tensor.Phonon   // phonon D≷ [Nqz, Nω, Na, Nb+1, 3, 3]
}

// Output holds the computed scattering self-energies plus kernel counters.
type Output struct {
	SigL, SigG *tensor.Electron
	PiL, PiG   *tensor.Phonon
	Stats      Stats
}

// Stats reports the arithmetic actually executed by a kernel.
type Stats struct {
	MatMuls    int64 // Norb×Norb (or trace-contraction) multiplications
	Flops      int64 // real flops of those multiplications
	ScalarOps  int64 // scalar-weighted AXPY flops (memory-bound part)
	BytesMoved int64 // tensor bytes read/written (roofline denominator)
}

// Kernel is one SSE implementation variant.
type Kernel interface {
	Name() string
	Compute(in *Input) *Output
}

// newOutput allocates zeroed result tensors shaped like the inputs.
func newOutput(in *Input) *Output {
	return &Output{
		SigL: tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		SigG: tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		PiL:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
		PiG:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
	}
}

// prefSigma returns the Σ≷ prefactor i·(dE/2π)/Nqz.
func prefSigma(p device.Params) complex128 {
	return complex(0, p.DE/(2*3.141592653589793)/float64(p.Nqz()))
}

// prefPi returns the Π≷ prefactor −i·(dE/2π)/Nkz.
func prefPi(p device.Params) complex128 {
	return complex(0, -p.DE/(2*3.141592653589793)/float64(p.Nkz))
}

// dTilde computes the 3×3 scalar weight matrices D̃≷_ij(qz, ω) for an
// ordered pair (a, b): D̃_ij = D_ba,ij − D_bb,ij − D_aa,ij + D_ab,ij.
// slotAB is the neighbour slot of b in a's list, slotBA of a in b's list.
func dTilde(dl, dg *tensor.Phonon, iq, iw, a, b, slotAB, slotBA int, wl, wg *[9]complex128) {
	dba := dl.Block(iq, iw, b, 1+slotBA)
	dbb := dl.Block(iq, iw, b, 0)
	daa := dl.Block(iq, iw, a, 0)
	dab := dl.Block(iq, iw, a, 1+slotAB)
	for e := 0; e < 9; e++ {
		wl[e] = dba[e] - dbb[e] - daa[e] + dab[e]
	}
	gba := dg.Block(iq, iw, b, 1+slotBA)
	gbb := dg.Block(iq, iw, b, 0)
	gaa := dg.Block(iq, iw, a, 0)
	gab := dg.Block(iq, iw, a, 1+slotAB)
	for e := 0; e < 9; e++ {
		wg[e] = gba[e] - gbb[e] - gaa[e] + gab[e]
	}
}

// parallelAtoms fans the per-atom work function out over a worker pool.
// All kernels write only atom-a-owned tensor regions from worker a, so no
// locking is needed — the associative accumulation the SDFG map exploits.
func parallelAtoms(na int, work func(a int)) {
	workers := parallelWorkers
	if workers <= 1 || na < 2 {
		for a := 0; a < na; a++ {
			work(a)
		}
		return
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Reserve this worker in the kernel budget so nested GEMMs
			// don't fan out on top of the atom-level parallelism.
			release := linalg.ReserveWorker()
			defer release()
			for {
				a := int(atomic.AddInt64(&next, 1))
				if a >= na {
					return
				}
				work(a)
			}
		}()
	}
	wg.Wait()
}

// parallelWorkers is a package-level knob so benchmarks can fix the worker
// count; zero or negative means GOMAXPROCS.
var parallelWorkers = defaultWorkers()

func defaultWorkers() int { return gomaxprocs() }

// SetWorkers overrides the SSE worker count (0 restores the default).
// Returns the previous value.
func SetWorkers(n int) int {
	old := parallelWorkers
	if n <= 0 {
		n = gomaxprocs()
	}
	parallelWorkers = n
	return old
}
