package sdfg

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/linalg"
)

// Executor runs a graph on a pool of workers with work stealing: a
// worker that completes a node pushes the successors it unblocked onto
// its own deque and pops them LIFO (depth-first, cache-warm); an idle
// worker steals the oldest entry of another worker's deque (FIFO,
// breadth-first), which spreads independent subtrees — the classic
// Cilk/TBB discipline, and the scheduling freedom the SDFG model exposes.
type Executor struct {
	workers int

	// Observer, when non-nil, is called after every node completes with
	// its label, kind, the worker that ran it, and its start/end offsets
	// from the run's clock zero — the hook internal/dist uses to mirror
	// executor spans into a run trace. It is called from worker
	// goroutines concurrently and must be safe for that.
	Observer func(label string, kind Kind, worker int, start, end time.Duration)
}

// NewExecutor returns an executor with the given pool size (minimum 1).
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	return &Executor{workers: workers}
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Span records when one node ran and on which worker.
type Span struct {
	Node       NodeID
	Worker     int
	Start, End time.Duration // offsets from Trace start
}

// Trace is the measured execution profile of one Run: per-node spans and
// the wall-clock makespan. Use it to compare a measured overlapped
// schedule against the phase-barrier baseline and against the
// internal/stream predictions.
type Trace struct {
	Spans []Span // indexed by NodeID
	Wall  time.Duration
	// Steals counts ready nodes executed by a worker other than the one
	// that unblocked them — a direct measure of how much the stealing
	// discipline rebalanced the graph.
	Steals int
}

// Busy sums the span durations of nodes matching kind on g.
func (tr *Trace) Busy(g *Graph, kind Kind) time.Duration {
	var d time.Duration
	for _, s := range tr.Spans {
		if g.Node(s.Node).Kind == kind {
			d += s.End - s.Start
		}
	}
	return d
}

// execState is the shared scheduling state of one Run. A single mutex
// guards every deque: the simulated tasks (RGF solves, tile kernels,
// collective waits) are micro- to milliseconds, so queue contention is
// negligible and the coarse lock keeps the scheduler trivially
// race-clean; the stealing *policy* is what shapes the schedule.
type execState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]NodeID // per worker: owner pops back, thieves steal front
	indeg  []int
	done   int
	total  int
	err    error
}

// Run executes every node of g, honoring dependencies. Nodes that return
// an error do not stop the graph: the remaining nodes still run (a rank
// abandoning its collectives would deadlock the other ranks — failure
// agreement is a node's job, not the scheduler's), and the first error is
// returned alongside the trace after the graph drains.
func (e *Executor) Run(g *Graph) (*Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.Len()
	tr := &Trace{Spans: make([]Span, n)}
	if n == 0 {
		return tr, nil
	}
	st := &execState{
		deques: make([][]NodeID, e.workers),
		indeg:  make([]int, n),
		total:  n,
	}
	st.cond = sync.NewCond(&st.mu)
	for _, node := range g.nodes {
		st.indeg[node.ID] = len(node.deps)
	}
	// Seed the sources round-robin so every worker starts busy.
	w := 0
	for _, node := range g.nodes {
		if st.indeg[node.ID] == 0 {
			st.deques[w%e.workers] = append(st.deques[w%e.workers], node.ID)
			w++
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	var steals int64
	var stealMu sync.Mutex
	for wid := 0; wid < e.workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			// Reserve this worker in the kernel budget so GEMMs inside
			// node bodies don't oversubscribe the executor pool.
			release := linalg.ReserveWorker()
			defer release()
			for {
				id, stolen, ok := st.next(wid, e.workers)
				if !ok {
					return
				}
				if stolen {
					stealMu.Lock()
					steals++
					stealMu.Unlock()
				}
				node := g.nodes[id]
				start := time.Since(t0)
				var err error
				if node.Run != nil {
					err = node.Run()
				}
				end := time.Since(t0)
				tr.Spans[id] = Span{Node: id, Worker: wid, Start: start, End: end}
				if e.Observer != nil {
					e.Observer(node.Label, node.Kind, wid, start, end)
				}
				st.finish(wid, node, err)
			}
		}(wid)
	}
	wg.Wait()
	tr.Wall = time.Since(t0)
	tr.Steals = int(steals)
	if st.err != nil {
		return tr, fmt.Errorf("sdfg: %w", st.err)
	}
	return tr, nil
}

// next blocks until work is available for worker wid or the graph has
// drained. It returns the node to run and whether it was stolen.
func (st *execState) next(wid, workers int) (NodeID, bool, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		// Own deque: newest first.
		if q := st.deques[wid]; len(q) > 0 {
			id := q[len(q)-1]
			st.deques[wid] = q[:len(q)-1]
			return id, false, true
		}
		// Steal: oldest entry of the first non-empty victim.
		for k := 1; k < workers; k++ {
			v := (wid + k) % workers
			if q := st.deques[v]; len(q) > 0 {
				id := q[0]
				st.deques[v] = q[1:]
				return id, true, true
			}
		}
		if st.done == st.total {
			return 0, false, false
		}
		st.cond.Wait()
	}
}

// finish marks a node complete, records its error, and releases any
// successors whose last dependency it was onto wid's deque.
func (st *execState) finish(wid int, node *Node, err error) {
	st.mu.Lock()
	if err != nil && st.err == nil {
		st.err = fmt.Errorf("node %q: %w", node.Label, err)
	}
	for _, s := range node.succs {
		st.indeg[s]--
		if st.indeg[s] == 0 {
			st.deques[wid] = append(st.deques[wid], s)
		}
	}
	st.done++
	st.cond.Broadcast()
	st.mu.Unlock()
}
