package sdfg

// Simulate computes the virtual-time makespan of g: the DAG
// generalization of internal/stream's two-engine model. Every rank owns
// `workers` compute engines plus one communication engine; each node
// occupies one engine of its Kind on its Rank for Cost units of virtual
// time, starting no earlier than its dependencies finish. Scheduling is
// greedy list scheduling — among all ready nodes, the one that can start
// earliest runs next (ties broken by node id), exactly the policy
// stream.Makespan uses for CUDA streams — so the result is deterministic
// and comparable across schedules of the same task set:
//
//	gain = Simulate(g.Phased(), w) − Simulate(g, w)
//
// is the predicted benefit of overlapped execution over bulk-synchronous
// phases.
func Simulate(g *Graph, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	n := g.Len()
	if n == 0 {
		return 0
	}
	ranks := 1
	for _, node := range g.nodes {
		if node.Rank+1 > ranks {
			ranks = node.Rank + 1
		}
	}
	// Engine pools: per rank, `workers` compute engines and 1 comm engine.
	compute := make([][]float64, ranks)
	for r := range compute {
		compute[r] = make([]float64, workers)
	}
	comm := make([]float64, ranks)

	finish := make([]float64, n)
	indeg := make([]int, n)
	ready := make([]float64, n) // max finish over deps, valid when indeg==0
	scheduled := make([]bool, n)
	for _, node := range g.nodes {
		indeg[node.ID] = len(node.deps)
	}
	for left := n; left > 0; left-- {
		// Pick the ready node with the earliest feasible start.
		best, bestEngine := -1, -1
		var bestStart float64
		for id := 0; id < n; id++ {
			if scheduled[id] || indeg[id] != 0 {
				continue
			}
			node := g.nodes[id]
			engineFree, engine := 0.0, -1
			if node.Kind == Comm {
				engineFree = comm[node.Rank]
			} else {
				engineFree, engine = minEngine(compute[node.Rank])
			}
			start := ready[id]
			if engineFree > start {
				start = engineFree
			}
			if best < 0 || start < bestStart {
				best, bestStart, bestEngine = id, start, engine
			}
		}
		node := g.nodes[best]
		end := bestStart + node.Cost
		if node.Kind == Comm {
			comm[node.Rank] = end
		} else {
			compute[node.Rank][bestEngine] = end
		}
		finish[best] = end
		scheduled[best] = true
		for _, s := range node.succs {
			indeg[s]--
			if end > ready[s] {
				ready[s] = end
			}
		}
	}
	var makespan float64
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// minEngine returns the earliest-free engine of a pool and its index.
func minEngine(pool []float64) (float64, int) {
	bi, bv := 0, pool[0]
	for i, v := range pool[1:] {
		if v < bv {
			bi, bv = i+1, v
		}
	}
	return bv, bi
}
