package sdfg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunHonorsDependencies runs a diamond many times and checks every
// node executed exactly once with all dependencies finished first.
func TestRunHonorsDependencies(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var mu sync.Mutex
		finished := map[string]bool{}
		mark := func(label string, deps ...string) func() error {
			return func() error {
				mu.Lock()
				defer mu.Unlock()
				for _, d := range deps {
					if !finished[d] {
						return fmt.Errorf("%s ran before %s", label, d)
					}
				}
				if finished[label] {
					return fmt.Errorf("%s ran twice", label)
				}
				finished[label] = true
				return nil
			}
		}
		g := New()
		a := g.Add(Spec{Label: "a", Run: mark("a")})
		b := g.Add(Spec{Label: "b", Run: mark("b", "a")}, a)
		c := g.Add(Spec{Label: "c", Run: mark("c", "a")}, a)
		g.Add(Spec{Label: "d", Run: mark("d", "b", "c")}, b, c)
		tr, err := NewExecutor(4).Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(finished) != 4 {
			t.Fatalf("ran %d nodes, want 4", len(finished))
		}
		if len(tr.Spans) != 4 {
			t.Fatalf("trace has %d spans", len(tr.Spans))
		}
	}
}

// TestRunDrainsAfterError is the collective-safety contract: an erroring
// node must not stop the rest of the graph (other ranks would deadlock in
// their exchanges), and the first error is still reported.
func TestRunDrainsAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	g := New()
	a := g.Add(Spec{Label: "a", Run: func() error { ran.Add(1); return boom }})
	g.Add(Spec{Label: "b", Run: func() error { ran.Add(1); return nil }}, a)
	g.Add(Spec{Label: "c", Run: func() error { ran.Add(1); return nil }})
	_, err := NewExecutor(2).Run(g)
	if !errors.Is(err, boom) {
		t.Fatalf("expected the node error, got %v", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("%d nodes ran after the error, want all 3", ran.Load())
	}
}

// TestWorkStealingBalances unblocks a wide fan from a single chain head:
// every ready successor lands on one worker's deque, so the other
// workers must steal to share the load.
func TestWorkStealingBalances(t *testing.T) {
	const fan = 64
	g := New()
	head := g.Add(Spec{Label: "head", Run: func() error { return nil }})
	for i := 0; i < fan; i++ {
		g.Add(Spec{
			Label: fmt.Sprintf("leaf/%d", i),
			Run:   func() error { time.Sleep(200 * time.Microsecond); return nil },
		}, head)
	}
	tr, err := NewExecutor(4).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steals == 0 {
		t.Fatal("a single-source fan must trigger stealing")
	}
	workers := map[int]bool{}
	for _, s := range tr.Spans {
		workers[s.Worker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("only %d workers participated", len(workers))
	}
}

// TestConcurrencyBound checks no more than `workers` nodes run at once.
func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	g := New()
	for i := 0; i < 32; i++ {
		g.Add(Spec{Run: func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		}})
	}
	if _, err := NewExecutor(workers).Run(g); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent nodes, pool is %d", p, workers)
	}
}

func TestEmptyGraph(t *testing.T) {
	tr, err := NewExecutor(2).Run(New())
	if err != nil || tr.Wall != 0 {
		t.Fatalf("empty graph: %v %v", tr, err)
	}
}

func TestTraceBusySplitsKinds(t *testing.T) {
	g := New()
	g.Add(Spec{Kind: Compute, Run: func() error { time.Sleep(2 * time.Millisecond); return nil }})
	g.Add(Spec{Kind: Comm, Run: func() error { time.Sleep(2 * time.Millisecond); return nil }})
	tr, err := NewExecutor(2).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Busy(g, Compute) <= 0 || tr.Busy(g, Comm) <= 0 {
		t.Fatalf("busy split = %v / %v", tr.Busy(g, Compute), tr.Busy(g, Comm))
	}
}
