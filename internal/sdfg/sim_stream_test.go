package sdfg

import (
	"testing"

	"repro/internal/stream"
)

// streamGraph lowers a stream task set onto an sdfg graph the way the
// two models correspond: one rank with one compute worker is exactly
// stream's two-engine GPU (compute engine + copy engine), a stream is a
// dependency chain, and tasks are assigned to chains round-robin. Ops
// are added stream-major in ascending stream order so the id tie-break
// matches stream.Makespan's ascending-stream tie-break.
func streamGraph(tasks []stream.Task, streams int) *Graph {
	g := New()
	if streams < 1 {
		streams = 1
	}
	for s := 0; s < streams; s++ {
		var prev []NodeID
		for i := s; i < len(tasks); i += streams {
			t := tasks[i]
			for _, op := range []struct {
				kind Kind
				cost float64
			}{{Comm, t.CopyIn}, {Compute, t.Compute}, {Comm, t.CopyOut}} {
				if op.cost == 0 {
					continue // Makespan drops zero-duration ops
				}
				id := g.Add(Spec{Label: "op", Kind: op.kind, Cost: op.cost}, prev...)
				prev = []NodeID{id}
			}
		}
	}
	return g
}

// TestSimulateMatchesStreamMakespan reconciles the repo's two cost
// models: on any stream-shaped workload, Simulate(lowered graph, 1
// worker) and stream.Makespan are the same greedy two-engine schedule
// and must agree exactly. This is the contract that lets internal/plan
// score the phases schedule with one model and the graph schedules with
// the other without mixing units.
func TestSimulateMatchesStreamMakespan(t *testing.T) {
	// Irregular durations: no two ops share a cost, so the greedy
	// tie-break never has to disambiguate equal start times beyond the
	// shared ascending-stream rule.
	tasks := []stream.Task{
		{CopyIn: 3, Compute: 7.5, CopyOut: 2},
		{CopyIn: 1, Compute: 4.25, CopyOut: 6},
		{CopyIn: 5, Compute: 2.125, CopyOut: 1.5},
		{CopyIn: 2.5, Compute: 8, CopyOut: 3.5},
		{CopyIn: 0, Compute: 9, CopyOut: 0.75}, // zero op: dropped by both lowerings
	}
	for _, streams := range []int{1, 2, 3, 8} {
		want := stream.Makespan(tasks, streams)
		got := Simulate(streamGraph(tasks, streams), 1)
		if got != want {
			t.Errorf("streams=%d: Simulate %.6g != Makespan %.6g", streams, got, want)
		}
	}
	// Fully serial sanity: one stream is the sum of every op.
	sum := 0.0
	for _, tk := range tasks {
		sum += tk.CopyIn + tk.Compute + tk.CopyOut
	}
	if got := stream.Makespan(tasks, 1); got != sum {
		t.Errorf("1-stream makespan %.6g != serial sum %.6g", got, sum)
	}
}

// TestCostModelEdgeCases pins the degenerate inputs of both models.
func TestCostModelEdgeCases(t *testing.T) {
	if got := stream.Makespan(nil, 4); got != 0 {
		t.Errorf("empty task set: Makespan = %g", got)
	}
	if got := Simulate(New(), 3); got != 0 {
		t.Errorf("empty graph: Simulate = %g", got)
	}

	one := []stream.Task{{CopyIn: 2, Compute: 5, CopyOut: 3}}
	if got := stream.Makespan(one, 1); got != 10 {
		t.Errorf("single task: Makespan = %g, want 10", got)
	}
	if got := stream.Makespan(one, 16); got != 10 {
		t.Errorf("single task, excess streams: Makespan = %g, want 10", got)
	}
	if got := Simulate(streamGraph(one, 1), 1); got != 10 {
		t.Errorf("single task graph: Simulate = %g, want 10", got)
	}

	g := New()
	g.Add(Spec{Label: "solo", Cost: 4.5})
	if got := Simulate(g, 1); got != 4.5 {
		t.Errorf("single node: Simulate = %g, want 4.5", got)
	}
	if got := Simulate(g, 0); got != 4.5 {
		t.Errorf("workers clamp: Simulate = %g, want 4.5", got)
	}

	// Workers beyond the node count change nothing.
	g2 := New()
	for i := 0; i < 3; i++ {
		g2.Add(Spec{Label: "p", Cost: float64(i + 1)})
	}
	if a, b := Simulate(g2, 3), Simulate(g2, 64); a != b || a != 3 {
		t.Errorf("independent nodes: Simulate(3)=%g Simulate(64)=%g, want 3", a, b)
	}
}

// TestSimulatePhasedGraph checks the A/B the plan autotuner relies on:
// on a phased graph the barriers serialize the phases, so the phased
// makespan is the sum of per-phase makespans and never beats the
// unphased graph.
func TestSimulatePhasedGraph(t *testing.T) {
	g := New()
	var gf []NodeID
	for i := 0; i < 4; i++ {
		gf = append(gf, g.Add(Spec{Label: "gf", Phase: 0, Cost: 5}))
	}
	ex := g.Add(Spec{Label: "exch", Kind: Comm, Phase: 1, Cost: 3}, gf...)
	g.Add(Spec{Label: "tile", Phase: 1, Cost: 2}, ex)

	unphased := Simulate(g, 2)
	phased := Simulate(g.Phased(), 2)
	// 4 solves on 2 workers = 10, then exchange 3, then tile 2.
	if want := 15.0; unphased != want {
		t.Errorf("unphased makespan %g, want %g", unphased, want)
	}
	if phased < unphased {
		t.Errorf("phased %g beats unphased %g: barriers cannot help", phased, unphased)
	}
}
