package sdfg

import (
	"strings"
	"testing"
)

func TestAddAndValidate(t *testing.T) {
	g := New()
	a := g.Add(Spec{Label: "a"})
	b := g.Add(Spec{Label: "b"}, a)
	c := g.Add(Spec{Label: "c"}, a, b)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Node(c).Deps(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("deps of c = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsForwardDep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward dependency")
		}
	}()
	g := New()
	g.Add(Spec{Label: "a"}, NodeID(5))
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New()
	a := g.Add(Spec{Label: "a"})
	b := g.Add(Spec{Label: "b"}, a)
	// Hand-wire a back edge (unreachable through Add).
	g.nodes[a].deps = append(g.nodes[a].deps, b)
	g.nodes[b].succs = append(g.nodes[b].succs, a)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestPhasedInsertsBarriers(t *testing.T) {
	// Two ranks, two phases, no cross-phase edges: the phased graph must
	// prevent any phase-1 node from starting before both phase-0 nodes end.
	g := New()
	g.Add(Spec{Label: "gf0", Phase: 0, Rank: 0, Cost: 10})
	g.Add(Spec{Label: "gf1", Phase: 0, Rank: 1, Cost: 1})
	g.Add(Spec{Label: "sse0", Phase: 1, Rank: 0, Cost: 1})
	g.Add(Spec{Label: "sse1", Phase: 1, Rank: 1, Cost: 10})
	ph := g.Phased()
	if err := ph.Validate(); err != nil {
		t.Fatal(err)
	}
	if ph.Len() != g.Len()+1 {
		t.Fatalf("phased graph has %d nodes, want %d", ph.Len(), g.Len()+1)
	}
	// Overlapped: each rank runs its own chain → makespan 11.
	// Phased: the barrier serializes the slow halves → 20.
	if got := Simulate(g, 1); got != 11 {
		t.Fatalf("overlapped makespan = %v, want 11", got)
	}
	if got := Simulate(ph, 1); got != 20 {
		t.Fatalf("phased makespan = %v, want 20", got)
	}
}

func TestPhasedKeepsIntraPhaseEdges(t *testing.T) {
	g := New()
	a := g.Add(Spec{Label: "a", Phase: 0, Cost: 3})
	g.Add(Spec{Label: "b", Phase: 0, Cost: 4}, a)
	ph := g.Phased()
	if got := Simulate(ph, 4); got != 7 {
		t.Fatalf("chain within a phase must stay serialized: makespan %v", got)
	}
}
