package sdfg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/stream"
)

func TestSimulateChainAndFan(t *testing.T) {
	g := New()
	a := g.Add(Spec{Cost: 2})
	b := g.Add(Spec{Cost: 3}, a)
	g.Add(Spec{Cost: 4}, b)
	if got := Simulate(g, 4); got != 9 {
		t.Fatalf("chain makespan = %v, want 9", got)
	}

	fan := New()
	for i := 0; i < 8; i++ {
		fan.Add(Spec{Cost: 1})
	}
	if got := Simulate(fan, 2); got != 4 {
		t.Fatalf("fan on 2 workers = %v, want 4", got)
	}
	if got := Simulate(fan, 8); got != 1 {
		t.Fatalf("fan on 8 workers = %v, want 1", got)
	}
}

// TestSimulateOverlapsCommWithCompute: a comm node and an independent
// compute node occupy different engines, so they run concurrently even
// with a single worker — the §7.1.3 copy/compute overlap.
func TestSimulateOverlapsCommWithCompute(t *testing.T) {
	g := New()
	g.Add(Spec{Kind: Comm, Cost: 5})
	g.Add(Spec{Kind: Compute, Cost: 5})
	if got := Simulate(g, 1); got != 5 {
		t.Fatalf("comm+compute makespan = %v, want 5 (overlapped)", got)
	}
}

// TestSimulateMatchesStreamModel validates the DAG scheduler against
// internal/stream on the workload both can express: independent
// copy-compute-copy tasks round-robined over FIFO chains, one compute
// engine, one copy engine.
func TestSimulateMatchesStreamModel(t *testing.T) {
	tasks := stream.GFTaskSet(24, 1.0, 0.08)
	for _, streams := range []int{1, 2, 4, 8, 24} {
		want := stream.Makespan(tasks, streams)
		g := New()
		prev := make([]NodeID, streams)
		for i := range prev {
			prev[i] = -1
		}
		for i, task := range tasks {
			s := i % streams
			deps := func() []NodeID {
				if prev[s] < 0 {
					return nil
				}
				return []NodeID{prev[s]}
			}
			in := g.Add(Spec{Label: fmt.Sprintf("in/%d", i), Kind: Comm, Cost: task.CopyIn}, deps()...)
			cp := g.Add(Spec{Label: fmt.Sprintf("k/%d", i), Kind: Compute, Cost: task.Compute}, in)
			prev[s] = g.Add(Spec{Label: fmt.Sprintf("out/%d", i), Kind: Comm, Cost: task.CopyOut}, cp)
		}
		got := Simulate(g, 1)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("streams=%d: sdfg makespan %v, stream model %v", streams, got, want)
		}
	}
}

// negfIterationDAG builds the shape of one distributed NEGF iteration:
// per-rank GF point solves, the four SSE exchange collectives (posts
// depend on local solves, waits depend on every rank's post), the tile
// kernel, and the observable reduction. Point counts per rank are uneven
// — the load imbalance overlap feeds on.
func negfIterationDAG(points []int, pointCost, commCost, tileCost float64) *Graph {
	g := New()
	ranks := len(points)
	elDone := make([][]NodeID, ranks)
	for r := 0; r < ranks; r++ {
		for i := 0; i < points[r]; i++ {
			bc := g.Add(Spec{Label: "bc", Phase: 0, Rank: r, Cost: pointCost / 4})
			rgf := g.Add(Spec{Label: "rgf", Phase: 0, Rank: r, Cost: pointCost}, bc)
			elDone[r] = append(elDone[r], rgf)
		}
	}
	posts := make([]NodeID, ranks)
	for r := 0; r < ranks; r++ {
		posts[r] = g.Add(Spec{Label: "post", Phase: 1, Rank: r, Kind: Comm, Cost: commCost}, elDone[r]...)
	}
	reduce := make([]NodeID, 0, ranks)
	for r := 0; r < ranks; r++ {
		wait := g.Add(Spec{Label: "wait", Phase: 1, Rank: r, Kind: Comm, Cost: commCost}, posts...)
		tile := g.Add(Spec{Label: "tile", Phase: 1, Rank: r, Cost: tileCost}, wait)
		// Collision partials belong to the GF phase of the bulk-synchronous
		// baseline; the dataflow schedule instead overlaps them with the
		// exchange wait.
		coll := g.Add(Spec{Label: "collision", Phase: 0, Rank: r, Cost: pointCost}, elDone[r]...)
		reduce = append(reduce, g.Add(Spec{Label: "obs", Phase: 2, Rank: r, Kind: Comm, Cost: commCost}, tile, coll))
	}
	g.Add(Spec{Label: "conv", Phase: 2, Rank: 0, Cost: 0}, reduce...)
	return g
}

// TestOverlapBeatsPhasesInVirtualTime is the deterministic half of the
// acceptance criterion: on an imbalanced workload where the stream model
// predicts overlap gains, the overlapped schedule's makespan is strictly
// below the phase-barrier schedule of the same task set.
func TestOverlapBeatsPhasesInVirtualTime(t *testing.T) {
	// Stream model sanity: with comm a visible fraction of compute,
	// multiple streams recover time — overlap should pay.
	tasks := stream.GFTaskSet(16, 1, 0.3)
	if s1, s4 := stream.Makespan(tasks, 1), stream.Makespan(tasks, 4); s4 >= s1 {
		t.Fatalf("stream model predicts no gain (%v vs %v); workload is wrong", s1, s4)
	}

	g := negfIterationDAG([]int{6, 4, 3, 3}, 1.0, 0.5, 2.0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		over := Simulate(g, workers)
		phased := Simulate(g.Phased(), workers)
		if over >= phased {
			t.Errorf("workers=%d: overlapped %v not below phased %v", workers, over, phased)
		}
	}
}
