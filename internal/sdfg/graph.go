// Package sdfg is a data-centric task-graph runtime: the executable form
// of the paper's central claim that expressing the solver as a stateful
// dataflow graph (SDFG) — not as bulk-synchronous phases — is what lets
// independent nodes overlap copies, kernels, and collectives (§4, §7.1.3).
//
// A Graph is a DAG whose nodes are units of work (a per-point boundary
// solve, an RGF solve, a collective post or wait, the SSE tile kernel, an
// observable reduction) and whose edges are the data each node produces
// and consumes. Two engines run it:
//
//   - Executor: real execution on a work-stealing worker pool. One
//     executor per simulated MPI rank; cross-rank edges are enforced by
//     the nonblocking internal/comm primitives the comm nodes call.
//   - Simulate: a deterministic virtual-time list scheduler (Node.Cost
//     durations), the DAG generalization of internal/stream's two-engine
//     model, used to compare overlapped against phase-barrier schedules.
package sdfg

import "fmt"

// Kind classifies a node for the engine model and for trace reporting.
type Kind uint8

const (
	// Compute nodes occupy one worker of their rank's pool.
	Compute Kind = iota
	// Comm nodes (collective posts/waits) occupy the rank's communication
	// engine in virtual time; the real executor runs them on a worker,
	// where they mostly block in a request Wait.
	Comm
)

func (k Kind) String() string {
	if k == Comm {
		return "comm"
	}
	return "compute"
}

// NodeID names a node within its graph.
type NodeID int32

// Spec describes a node being added to a graph.
type Spec struct {
	Label string
	Kind  Kind
	// Phase is the bulk-synchronous phase this node belongs to (GF solve,
	// SSE exchange, reduction, ...). The overlapped schedule ignores it;
	// Phased() turns it into barrier edges for the A/B comparison.
	Phase int
	// Rank is the simulated MPI rank owning the node. Per-rank graphs may
	// leave it zero; global graphs built for Simulate set it so nodes
	// compete only for their own rank's engines.
	Rank int
	// Cost is the virtual duration used by Simulate. The real executor
	// ignores it.
	Cost float64
	// Run does the work. Nil is legal (a pure synchronization point).
	Run func() error
}

// Node is one vertex of the dataflow graph.
type Node struct {
	Spec
	ID    NodeID
	deps  []NodeID
	succs []NodeID
}

// Deps returns the node's dependencies (the nodes producing its inputs).
func (n *Node) Deps() []NodeID { return n.deps }

// Graph is a DAG of tasks. Build it with Add; Validate checks shape.
// A Graph is not safe for concurrent mutation, and a single Graph must
// not be executed by two executors at once.
type Graph struct {
	nodes []*Node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Add appends a node that consumes the outputs of deps and returns its
// id. Dependencies must already be in the graph (ids are handed out in
// insertion order), which makes cycles unrepresentable by construction.
func (g *Graph) Add(s Spec, deps ...NodeID) NodeID {
	id := NodeID(len(g.nodes))
	n := &Node{Spec: s, ID: id}
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("sdfg: node %q depends on unknown node %d", s.Label, d))
		}
		n.deps = append(n.deps, d)
		g.nodes[d].succs = append(g.nodes[d].succs, id)
	}
	g.nodes = append(g.nodes, n)
	return id
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Validate checks structural invariants: dependency ids in range and
// acyclicity (guaranteed by Add, but re-checked for graphs assembled by
// hand or mutated in tests).
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		for _, d := range n.deps {
			if d < 0 || int(d) >= len(g.nodes) {
				return fmt.Errorf("sdfg: node %d (%s) has out-of-range dep %d", n.ID, n.Label, d)
			}
		}
	}
	// Kahn's algorithm: every node must be reachable at indegree zero.
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		for range n.deps {
			indeg[n.ID]++
		}
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range g.nodes[id].succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(g.nodes) {
		return fmt.Errorf("sdfg: graph has a cycle (%d of %d nodes reachable)", seen, len(g.nodes))
	}
	return nil
}

// Phased returns a copy of g with a zero-cost barrier node between
// consecutive phases: no node of phase p+1 may start before every node
// of phase p has finished, on any rank. This is exactly the
// bulk-synchronous execution the paper's baseline uses, expressed on the
// same task set, so Simulate(g) vs Simulate(Phased(g)) isolates the gain
// of overlapped scheduling.
func (g *Graph) Phased() *Graph {
	lo, hi := 0, 0
	for _, n := range g.nodes {
		if n.Phase < lo {
			lo = n.Phase
		}
		if n.Phase > hi {
			hi = n.Phase
		}
	}
	out := New()
	ids := make([]NodeID, len(g.nodes))
	var prevBarrier NodeID = -1
	for p := lo; p <= hi; p++ {
		var phase []NodeID
		for _, n := range g.nodes {
			if n.Phase != p {
				continue
			}
			deps := make([]NodeID, 0, len(n.deps)+1)
			for _, d := range n.deps {
				if g.nodes[d].Phase > p {
					panic(fmt.Sprintf("sdfg: node %q (phase %d) depends on later phase %d",
						n.Label, p, g.nodes[d].Phase))
				}
				// Earlier-phase edges are subsumed by the barrier.
				if g.nodes[d].Phase == p {
					deps = append(deps, ids[d])
				}
			}
			if prevBarrier >= 0 {
				deps = append(deps, prevBarrier)
			}
			ids[n.ID] = out.Add(n.Spec, deps...)
			phase = append(phase, ids[n.ID])
		}
		if len(phase) > 0 && p < hi {
			prevBarrier = out.Add(Spec{Label: fmt.Sprintf("barrier/%d", p), Phase: p}, phase...)
		}
	}
	return out
}
