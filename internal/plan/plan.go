package plan

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/negf"
	"repro/internal/sdfg"
	"repro/internal/stream"
)

// Candidate is one point of the plan search space.
type Candidate struct {
	Schedule      dist.Schedule
	Workers       int
	PipelineDepth int // 0 unless Schedule is SchedulePipeline
}

// Plan is a chosen execution plan: the argmin candidate, the GEMM cache
// blocking picked by direct measurement, and the virtual-time score the
// choice was based on.
type Plan struct {
	Candidate
	Blocking linalg.BlockSizes
	// PredictedNs is the modeled steady-state makespan of ONE
	// self-consistent iteration on the slowest rank.
	PredictedNs float64
}

func (p Plan) String() string {
	s := fmt.Sprintf("%s w=%d", p.Schedule, p.Workers)
	if p.Schedule == dist.SchedulePipeline {
		s += fmt.Sprintf(" d=%d", p.PipelineDepth)
	}
	if p.Blocking != linalg.DefaultBlocking() {
		s += fmt.Sprintf(" gemm=%dx%dx%d", p.Blocking.MC, p.Blocking.KC, p.Blocking.NC)
	}
	return s
}

// Options bounds the enumeration. Zero fields take defaults.
type Options struct {
	Ranks     int                 // world size the plan is for (required)
	Workers   []int               // worker pool sizes (default 1, 2, 4)
	Depths    []int               // pipeline depths (default 2, 3)
	Blockings []linalg.BlockSizes // GEMM blockings (default: compiled-in ± one step)
}

func (o Options) normalize() (Options, error) {
	if o.Ranks < 1 {
		return o, fmt.Errorf("plan: world size %d", o.Ranks)
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4}
	}
	if len(o.Depths) == 0 {
		o.Depths = []int{2, 3}
	}
	if len(o.Blockings) == 0 {
		d := linalg.DefaultBlocking()
		o.Blockings = []linalg.BlockSizes{
			d,
			{MC: d.MC / 2, KC: d.KC / 2, NC: d.NC / 2},
			{MC: d.MC * 2, KC: d.KC, NC: d.NC * 2},
		}
	}
	return o, nil
}

// Candidates enumerates the schedule search space: the serial phases
// baseline, the overlapped schedule per worker count, and the pipelined
// schedule per worker count × window depth. Blocking is orthogonal (it
// never changes results or the graph shape) and is chosen separately by
// measurement.
func Candidates(o Options) []Candidate {
	cands := []Candidate{{Schedule: dist.SchedulePhases, Workers: 1}}
	for _, w := range o.Workers {
		cands = append(cands, Candidate{Schedule: dist.ScheduleOverlap, Workers: w})
	}
	for _, w := range o.Workers {
		for _, d := range o.Depths {
			cands = append(cands, Candidate{Schedule: dist.SchedulePipeline, Workers: w, PipelineDepth: d})
		}
	}
	return cands
}

// Predict scores one candidate: the modeled steady-state makespan of one
// self-consistent iteration on the most-loaded rank, in nanoseconds of
// virtual time. Phases is scored with stream.Makespan (its execution
// really is a FIFO of phase-sized operations over a compute and a copy
// engine); the graph schedules are scored with sdfg.Simulate on a model
// of the per-rank task graph dist actually builds.
func Predict(p device.Params, ranks int, cal Calibration, c Candidate) float64 {
	nEl := ceilDiv(len(negf.AllPairs(p)), ranks)
	nPh := ceilDiv(len(negf.AllPhononPoints(p)), ranks)
	elNs := cal.BCWarmNs + cal.ElNs
	phNs := cal.PhBCWarmNs + cal.PhNs
	exchNs := model.DaCeCommVolume(p, 1, ranks) / float64(ranks) * cal.CopyNsPerByte
	tileNs := cal.TileNs / float64(ranks)

	switch c.Schedule {
	case dist.SchedulePhases:
		// One rank's iteration is a strict FIFO: the GF phase computes,
		// the exchange copies, the tile computes, the reduction copies.
		return stream.Makespan([]stream.Task{
			{Compute: float64(nEl)*elNs + float64(nPh)*phNs, CopyOut: exchNs},
			{Compute: tileNs + cal.MiscNs, CopyOut: cal.ReduceNs},
		}, 1)
	case dist.ScheduleOverlap:
		g := &sdfg.Graph{}
		addIteration(g, nil, nEl, nPh, elNs, phNs, exchNs, tileNs, cal)
		return sdfg.Simulate(g, c.Workers)
	case dist.SchedulePipeline:
		d := c.PipelineDepth
		if d < 1 {
			d = 1
		}
		g := &sdfg.Graph{}
		var release []sdfg.NodeID
		for k := 0; k < d; k++ {
			release = addIteration(g, release, nEl, nPh, elNs, phNs, exchNs, tileNs, cal)
		}
		return sdfg.Simulate(g, c.Workers) / float64(d)
	}
	return 0
}

// addIteration appends one iteration's model nodes to g and returns the
// release set the next iteration's solves must wait on (exchanged +
// mixed Σ, i.e. the tile and the residual mixing work). The observable
// reduction hangs off the side: nothing within the window depends on it,
// which is exactly the latency the pipelined schedule hides.
func addIteration(g *sdfg.Graph, after []sdfg.NodeID, nEl, nPh int, elNs, phNs, exchNs, tileNs float64, cal Calibration) []sdfg.NodeID {
	solves := make([]sdfg.NodeID, 0, nEl+nPh)
	for i := 0; i < nEl; i++ {
		solves = append(solves, g.Add(sdfg.Spec{Label: "el", Cost: elNs}, after...))
	}
	for j := 0; j < nPh; j++ {
		solves = append(solves, g.Add(sdfg.Spec{Label: "ph", Cost: phNs}, after...))
	}
	exch := g.Add(sdfg.Spec{Label: "exch", Kind: sdfg.Comm, Cost: exchNs}, solves...)
	tile := g.Add(sdfg.Spec{Label: "tile", Cost: tileNs}, exch)
	mix := g.Add(sdfg.Spec{Label: "mix", Cost: cal.MiscNs}, tile)
	g.Add(sdfg.Spec{Label: "reduce", Kind: sdfg.Comm, Cost: cal.ReduceNs}, tile, mix)
	return []sdfg.NodeID{mix}
}

// Choose calibrates, scores every candidate, measures the GEMM blocking
// candidates, and returns the argmin plan. Ties (within 1%) resolve
// toward the earlier — simpler — candidate, so phases beats overlap
// beats pipeline when the model sees no benefit.
func Choose(dev *device.Device, o Options) (Plan, error) {
	o, err := o.normalize()
	if err != nil {
		return Plan{}, err
	}
	cal, err := Calibrate(dev)
	if err != nil {
		return Plan{}, err
	}
	return chooseWith(dev, o, cal)
}

func chooseWith(dev *device.Device, o Options, cal Calibration) (Plan, error) {
	best, bestNs := Candidate{}, 0.0
	for i, c := range Candidates(o) {
		ns := Predict(dev.P, o.Ranks, cal, c)
		if i == 0 || ns < bestNs*0.99 {
			best, bestNs = c, ns
		}
	}
	bl, err := ChooseBlocking(dev, o.Blockings)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Candidate: best, Blocking: bl, PredictedNs: bestNs}, nil
}

// ChooseBlocking times a representative GEMM (the device's largest
// diagonal block, the shape every RGF step multiplies) under each
// candidate blocking and returns the fastest, preferring the
// compiled-in default within a 3% band — measured noise should not
// evict a hand-tuned setting.
func ChooseBlocking(dev *device.Device, cands []linalg.BlockSizes) (linalg.BlockSizes, error) {
	n := 0
	for _, s := range dev.Hamiltonian(0).Sizes {
		if s > n {
			n = s
		}
	}
	if n < 8 {
		n = 8
	}
	a, b, c := linalg.New(n, n), linalg.New(n, n), linalg.New(n, n)
	for i := range a.Data {
		a.Data[i] = complex(float64(i%7)-3, float64(i%5)-2)
		b.Data[i] = complex(float64(i%3)-1, float64(i%11)-5)
	}
	def := linalg.DefaultBlocking()
	defer linalg.ResetBlocking()
	bestBl, bestNs, defNs := def, 0.0, 0.0
	for _, bl := range cands {
		if err := linalg.SetBlocking(bl); err != nil {
			return def, fmt.Errorf("plan: blocking candidate: %w", err)
		}
		ns := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			linalg.GEMM(1, a, linalg.NoTrans, b, linalg.NoTrans, 0, c)
			if d := float64(time.Since(t0).Nanoseconds()); rep == 0 || d < ns {
				ns = d
			}
		}
		if bl == def {
			defNs = ns
		}
		if bestNs == 0 || ns < bestNs {
			bestBl, bestNs = bl, ns
		}
	}
	if defNs > 0 && bestNs > defNs*0.97 {
		return def, nil
	}
	return bestBl, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
