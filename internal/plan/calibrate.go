// Package plan is the execution-plan autotuner: it calibrates the
// repo's virtual-time cost models (internal/sdfg.Simulate and
// internal/stream.Makespan — the models validated against the paper's
// Table 6 shape) from a short probe run on the actual device, scores
// every candidate plan (schedule × worker pool × pipeline depth ×
// GEMM cache blocking) in virtual time, and returns the argmin. The
// qt facade surfaces it as WithAutoPlan; the resolved plan is recorded
// in the run's content-addressed configuration.
//
// Calibration contract: the probe runs two self-consistent iterations
// of the overlapped distributed schedule on a single rank with tracing
// enabled. The first iteration observes cold boundary-condition
// decimations, the second observes cache hits; per-point costs keep the
// minimum observed occurrence (noise-robust: contention only inflates a
// span) while the per-iteration aggregates (tile, residual, reduce) are
// averaged across both iterations — so the calibration describes the
// steady state of a cached run, plus the one-time cold cost. Costs are
// per-node nanoseconds; the prediction step scales them by each
// candidate's shard sizes. A calibration is only as good as the probe
// host: it is measured wall time, not a hardware model.
package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/negf"
	"repro/internal/obs"
)

// Calibration holds the measured per-node costs the candidate scoring
// feeds into the virtual-time models.
type Calibration struct {
	// Per electron point: cold Sancho-Rubio decimation, warm cache
	// lookup, and the RGF solve proper (steady state).
	BCColdNs, BCWarmNs, ElNs float64
	// Same three numbers for a phonon point.
	PhBCColdNs, PhBCWarmNs, PhNs float64
	// TileNs is one full-grid SSE tile application on one rank; a
	// candidate with P ranks owns ~1/P of the pair blocks.
	TileNs float64
	// MiscNs is the per-iteration residual graph work on one rank —
	// accumulation, collision partials, mixing — everything that is
	// neither a point solve nor a collective.
	MiscNs float64
	// ReduceNs is the per-iteration observable reduction latency.
	ReduceNs float64
	// CopyNsPerByte converts exchange volume to time: the in-process
	// transport is a memcpy, so its bandwidth is the memory bandwidth.
	CopyNsPerByte float64
	// ProbeNs is the total wall time the calibration run took.
	ProbeNs int64
}

// Calibrate runs the probe and reduces its trace to a Calibration.
func Calibrate(dev *device.Device) (Calibration, error) {
	trc := obs.NewTracer()
	opts := dist.DefaultOptions(1)
	opts.Schedule = dist.ScheduleOverlap
	opts.Workers = 1
	opts.MaxIter = 2
	opts.Tol = 1e-300 // never converge: we want exactly two iterations
	opts.Tracer = trc
	t0 := time.Now()
	_, err := dist.Run(dev, opts)
	if err != nil && err != negf.ErrNotConverged {
		return Calibration{}, fmt.Errorf("plan: calibration probe: %w", err)
	}
	cal := reduceTrace(trc.Trace(), opts.MaxIter)
	cal.CopyNsPerByte = measureCopy()
	cal.ProbeNs = time.Since(t0).Nanoseconds()
	if cal.ElNs <= 0 || cal.TileNs <= 0 {
		return cal, fmt.Errorf("plan: probe trace incomplete: %+v", cal)
	}
	return cal, nil
}

// reduceTrace aggregates the probe spans. Point-solve spans carry their
// grid indices, so cold/warm splitting keys on (name, point): the first
// occurrence of each point is the cold iteration, later ones are warm.
// Per-point costs take the *minimum* observed occurrence, not the mean:
// preemption by a co-scheduled goroutine can only inflate a measured
// span, so the minimum is the robust contention-free estimate — the
// same policy as the bandwidth probe's best-of-3.
func reduceTrace(tr *obs.Trace, iters int) Calibration {
	cold := map[string]float64{}
	warm := map[string]float64{}
	seen := map[string]bool{}
	var tile, misc, reduce float64
	var bcrgf float64 // double-counted inside the solve-node task spans
	for _, sp := range tr.Spans {
		switch sp.Cat {
		case "bc", "rgf":
			key := fmt.Sprintf("%s/%d,%d", sp.Name, sp.I, sp.J)
			m := warm
			if !seen[key] {
				seen[key] = true
				m = cold
			}
			d := float64(sp.Dur)
			if best, ok := m[sp.Name]; !ok || d < best {
				m[sp.Name] = d
			}
			bcrgf += d
		case "sse":
			tile += float64(sp.Dur)
		case "reduce":
			reduce += float64(sp.Dur)
		case "task":
			// Executor node envelopes: solve nodes re-cover their bc/rgf
			// spans, so the residual (accum/collision/mix/...) is the
			// task total minus the inner categories, folded in below.
			if !strings.HasPrefix(sp.Name, "iter") {
				misc += float64(sp.Dur)
			}
		}
	}
	residual := (misc - bcrgf) / float64(iters)
	if residual < 0 {
		residual = 0
	}
	return Calibration{
		BCColdNs:   cold["bc/el"],
		BCWarmNs:   warm["bc/el"],
		ElNs:       warm["rgf/el"],
		PhBCColdNs: cold["bc/ph"],
		PhBCWarmNs: warm["bc/ph"],
		PhNs:       warm["rgf/ph"],
		TileNs:     tile / float64(iters),
		MiscNs:     residual,
		ReduceNs:   reduce / float64(iters),
	}
}

// measureCopy times a memory copy large enough to defeat the caches and
// returns ns/byte, the cost coefficient of the in-process exchange.
func measureCopy() float64 {
	const n = 4 << 20
	src := make([]byte, n)
	dst := make([]byte, n)
	for i := range src {
		src[i] = byte(i)
	}
	best := float64(0)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		copy(dst, src)
		d := float64(time.Since(t0).Nanoseconds()) / n
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}
