package plan

import (
	"testing"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/linalg"
)

func testDevice(t testing.TB) *device.Device {
	t.Helper()
	p := device.TestParams(12, 3, 2)
	p.NE = 12
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// testCal is a synthetic steady-state calibration with a deliberately
// expensive reduction: the latency the pipelined schedule exists to
// hide. Deterministic, so the model assertions below are exact.
func testCal() Calibration {
	return Calibration{
		BCColdNs: 500, BCWarmNs: 10, ElNs: 100,
		PhBCColdNs: 300, PhBCWarmNs: 10, PhNs: 60,
		TileNs: 400, MiscNs: 50, ReduceNs: 800,
		// Cheap transport: the bottleneck is the reduction latency, not
		// exchange bandwidth, so the window has something to hide.
		CopyNsPerByte: 1e-4,
	}
}

// TestPredictOrdering pins the structural claims of the cost model on a
// multi-worker candidate set: overlapping within an iteration beats the
// serial phases baseline, and pipelining across iterations beats
// overlap by hiding the reduction tail behind the next window's solves.
func TestPredictOrdering(t *testing.T) {
	p := testDevice(t).P
	cal := testCal()
	phases := Predict(p, 4, cal, Candidate{Schedule: dist.SchedulePhases, Workers: 1})
	overlap := Predict(p, 4, cal, Candidate{Schedule: dist.ScheduleOverlap, Workers: 4})
	pipe := Predict(p, 4, cal, Candidate{Schedule: dist.SchedulePipeline, Workers: 4, PipelineDepth: 3})
	if !(phases > overlap) {
		t.Errorf("phases %.0f should exceed overlap %.0f", phases, overlap)
	}
	if !(overlap > pipe) {
		t.Errorf("overlap %.0f should exceed pipeline %.0f", overlap, pipe)
	}
	// A depth-1 window is the overlapped graph plus a fence — identical
	// model, identical prediction.
	pipe1 := Predict(p, 4, cal, Candidate{Schedule: dist.SchedulePipeline, Workers: 4, PipelineDepth: 1})
	if pipe1 != overlap {
		t.Errorf("depth-1 pipeline %.0f != overlap %.0f", pipe1, overlap)
	}
	// More workers never hurt in virtual time.
	o1 := Predict(p, 4, cal, Candidate{Schedule: dist.ScheduleOverlap, Workers: 1})
	if o1 < overlap {
		t.Errorf("1 worker %.0f predicted faster than 4 workers %.0f", o1, overlap)
	}
}

func TestCandidates(t *testing.T) {
	o, err := Options{Ranks: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(o)
	// phases + 3 worker counts for overlap + 3×2 for pipeline.
	if len(cands) != 1+3+6 {
		t.Fatalf("got %d candidates: %+v", len(cands), cands)
	}
	if cands[0].Schedule != dist.SchedulePhases {
		t.Errorf("first candidate should be the phases baseline, got %+v", cands[0])
	}
	if _, err := (Options{}).normalize(); err == nil {
		t.Error("Ranks 0 must be rejected")
	}
}

// TestChooseArgmin runs the full selection against the synthetic
// calibration (no probe) and checks the pick is the true argmin of the
// enumerated predictions — the acceptance property of the autotuner.
func TestChooseArgmin(t *testing.T) {
	dev := testDevice(t)
	o, err := Options{Ranks: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cal := testCal()
	got, err := chooseWith(dev, o, cal)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i, c := range Candidates(o) {
		if ns := Predict(dev.P, o.Ranks, cal, c); i == 0 || ns < best {
			best = ns
		}
	}
	if got.PredictedNs > best*1.01 {
		t.Errorf("chose %.0f ns (%+v), argmin is %.0f ns", got.PredictedNs, got.Candidate, best)
	}
	if got.Schedule != dist.SchedulePipeline {
		t.Errorf("the reduce-heavy calibration should pick the pipeline, got %v", got.Schedule)
	}
	if got.Blocking == (linalg.BlockSizes{}) {
		t.Error("no blocking chosen")
	}
}

// TestChooseTieBreak: with a free reduction and free communication the
// schedules tie per-iteration at 1 worker, and the tie must resolve to
// the simplest candidate — the phases baseline.
func TestChooseTieBreak(t *testing.T) {
	dev := testDevice(t)
	o, err := Options{Ranks: 1, Workers: []int{1}, Depths: []int{2}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BCWarmNs: 10, ElNs: 100, PhBCWarmNs: 10, PhNs: 60, TileNs: 400}
	got, err := chooseWith(dev, o, cal)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schedule != dist.SchedulePhases {
		t.Errorf("tie should keep the phases baseline, got %v", got.Schedule)
	}
}

// TestCalibrate runs the real probe on the test device and sanity-checks
// the measured calibration: every steady-state cost positive, the cold
// boundary solve at least as expensive as the warm lookup.
func TestCalibrate(t *testing.T) {
	cal, err := Calibrate(testDevice(t))
	if err != nil {
		t.Fatal(err)
	}
	if cal.ElNs <= 0 || cal.PhNs <= 0 || cal.TileNs <= 0 || cal.ReduceNs <= 0 {
		t.Fatalf("incomplete calibration: %+v", cal)
	}
	if cal.BCColdNs < cal.BCWarmNs {
		t.Errorf("cold BC %.0f ns cheaper than warm %.0f ns", cal.BCColdNs, cal.BCWarmNs)
	}
	if cal.CopyNsPerByte <= 0 {
		t.Errorf("no copy bandwidth measured")
	}
	if cal.ProbeNs <= 0 {
		t.Errorf("no probe wall time")
	}
}

func TestChooseBlocking(t *testing.T) {
	dev := testDevice(t)
	defer linalg.ResetBlocking()
	bl, err := ChooseBlocking(dev, []linalg.BlockSizes{linalg.DefaultBlocking(), {MC: 64, KC: 64, NC: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if err := linalg.SetBlocking(bl); err != nil {
		t.Fatalf("chosen blocking %+v is not admissible: %v", bl, err)
	}
	if _, err := ChooseBlocking(dev, []linalg.BlockSizes{{MC: 1, KC: 0, NC: 0}}); err == nil {
		t.Error("inadmissible candidate must surface an error")
	}
}
