package repro

import (
	"math/rand"
	"testing"

	"repro/internal/bc"
	"repro/internal/blocktri"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/rgf"
	"repro/internal/sse"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the SSE
// schedule (regrouped transients vs naive), the atom-level parallelism,
// the boundary-condition caching of §7.1.2, and the RGF-vs-dense solver
// crossover that motivates the recursive algorithm.

// ── SSE worker scaling (the map-parallelism of the SDFG) ──

func benchSSEWorkers(b *testing.B, workers int) {
	in := benchInput()
	old := sse.SetWorkers(workers)
	defer sse.SetWorkers(old)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (sse.DaCe{}).Compute(in)
	}
}

func BenchmarkAblation_SSEWorkers1(b *testing.B) { benchSSEWorkers(b, 1) }
func BenchmarkAblation_SSEWorkers2(b *testing.B) { benchSSEWorkers(b, 2) }
func BenchmarkAblation_SSEWorkers4(b *testing.B) { benchSSEWorkers(b, 4) }
func BenchmarkAblation_SSEWorkersAll(b *testing.B) {
	benchSSEWorkers(b, 0) // GOMAXPROCS
}

// ── Boundary-condition caching (§7.1.2, Fig. 9 cache modes) ──

func benchGFCacheMode(b *testing.B, mode bc.Mode) {
	dev := benchDevice()
	opts := negf.DefaultOptions()
	opts.CacheMode = mode
	s := negf.New(dev, opts)
	if err := s.GFPhase(); err != nil { // warm the cache (if any)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.GFPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_GFNoCache(b *testing.B) { benchGFCacheMode(b, bc.NoCache) }
func BenchmarkAblation_GFCacheBC(b *testing.B) { benchGFCacheMode(b, bc.CacheBC) }

// ── RGF vs dense inversion (why the recursive solver exists) ──

func rgfProblem(nb, bs int) *rgf.Problem {
	rng := rand.New(rand.NewSource(1))
	sizes := make([]int, nb)
	for i := range sizes {
		sizes[i] = bs
	}
	// A well-conditioned Hermitian-plus-broadening system.
	h := func(n int) *linalg.Matrix {
		m := linalg.New(n, n)
		for i := range m.Data {
			m.Data[i] = complex(0.3*rng.NormFloat64(), 0.3*rng.NormFloat64())
		}
		linalg.Hermitize(m, m)
		return m
	}
	m := blocktri.New(sizes)
	for i := range m.Diag {
		m.Diag[i] = h(sizes[i])
		for r := 0; r < sizes[i]; r++ {
			m.Diag[i].Set(r, r, m.Diag[i].At(r, r)+complex(0.8, 0.05))
		}
		if i+1 < len(sizes) {
			m.Upper[i] = linalg.Scale(linalg.New(sizes[i], sizes[i+1]), 0.3, h(sizes[i]))
			m.Lower[i] = m.Upper[i].H()
		}
	}
	return &rgf.Problem{
		A:    m,
		SigL: make([]*linalg.Matrix, nb),
		SigG: make([]*linalg.Matrix, nb),
	}
}

func BenchmarkAblation_RGF8x24(b *testing.B) {
	p := rgfProblem(8, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgf.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DenseInverse8x24(b *testing.B) {
	p := rgfProblem(8, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := rgf.DenseReference(p); err != nil {
			b.Fatal(err)
		}
	}
}

// ── Core dense kernels ──

func randomDense(n int) *linalg.Matrix {
	rng := rand.New(rand.NewSource(2))
	m := linalg.New(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func BenchmarkLinalg_GEMM64(b *testing.B) {
	x, y := randomDense(64), randomDense(64)
	b.SetBytes(3 * 64 * 64 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linalg.Mul(x, y)
	}
}

func BenchmarkLinalg_GEMM256(b *testing.B) {
	x, y := randomDense(256), randomDense(256)
	b.SetBytes(3 * 256 * 256 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linalg.Mul(x, y)
	}
}

func BenchmarkLinalg_Inverse128(b *testing.B) {
	x := randomDense(128)
	for i := 0; i < 128; i++ {
		x.Set(i, i, x.At(i, i)+20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linalg.MustInverse(x)
	}
}
