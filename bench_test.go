// Package repro's root benchmark harness: one benchmark per paper table
// and figure. Analytic artifacts evaluate the §6.1 performance model;
// measured artifacts execute the real kernels on scaled-down synthetic
// devices. Regenerate everything human-readable with:
//
//	go run ./cmd/paperbench -all
//
// and the raw timings with:
//
//	go test -bench=. -benchmem
package repro

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/negf"
	"repro/internal/rgf"
	"repro/internal/sparse"
	"repro/internal/sse"
	"repro/internal/staging"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// benchDevice returns the standard scaled-down structure used by the
// measured benchmarks.
func benchDevice() *device.Device {
	p := device.TestParams(24, 4, 2)
	p.NE = 16
	p.Nomega = 4
	return device.MustBuild(p)
}

// benchInput builds a synthetic SSE input on the bench device.
func benchInput() *sse.Input {
	dev := benchDevice()
	p := dev.P
	rng := rand.New(rand.NewSource(1))
	gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	nbp1 := dev.MaxNb() + 1
	dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	for _, buf := range [][]complex128{gl.Data, gg.Data, dl.Data, dg.Data} {
		for i := range buf {
			buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return &sse.Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
}

// ── Table 3: per-kernel computational load ──

// BenchmarkTable3_FlopModel evaluates the analytic per-iteration flop
// model at paper scale (all Nkz columns).
func BenchmarkTable3_FlopModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Table3([]int{3, 5, 7, 9, 11})
	}
}

// BenchmarkTable3_RGFKernel measures the RGF kernel the flop model
// describes, on a scaled-down block-tridiagonal problem.
func BenchmarkTable3_RGFKernel(b *testing.B) {
	b.ReportAllocs()
	dev := benchDevice()
	h := dev.Hamiltonian(0)
	a := h.Clone()
	a.Scale(-1)
	for i := 0; i < a.NB; i++ {
		for r := 0; r < a.Sizes[i]; r++ {
			a.Diag[i].Set(r, r, a.Diag[i].At(r, r)+complex(0.4, 1e-3))
		}
	}
	sig := make([]*linalg.Matrix, a.NB)
	prob := &rgf.Problem{A: a, SigL: sig, SigG: sig}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgf.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// ── Tables 4–5: communication volumes ──

// BenchmarkTable4_CommModel evaluates the weak-scaling volume model.
func BenchmarkTable4_CommModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Table4([]int{3, 5, 7, 9, 11})
	}
}

// BenchmarkTable4_MeasuredOMEN runs the original decomposition's SSE
// exchange for real on the simulated fabric and reports bytes moved.
func BenchmarkTable4_MeasuredOMEN(b *testing.B) {
	b.ReportAllocs()
	in := benchInput()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		_, st, err := decomp.RunOMEN(comm.NewWorld(4), in, 4)
		if err != nil {
			b.Fatal(err)
		}
		bytes = st.BytesSent
	}
	b.ReportMetric(float64(bytes), "bytes/iter")
}

// BenchmarkTable4_MeasuredDaCe runs the communication-avoiding exchange.
func BenchmarkTable4_MeasuredDaCe(b *testing.B) {
	b.ReportAllocs()
	in := benchInput()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		_, st, err := decomp.RunDaCe(comm.NewWorld(4), in, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		bytes = st.BytesSent
	}
	b.ReportMetric(float64(bytes), "bytes/iter")
}

// BenchmarkTable5_CommModel evaluates the strong-scaling volume model.
func BenchmarkTable5_CommModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Table5([]int{224, 448, 896, 1792, 2688})
	}
}

// ── Table 6: stream pipelining ──

func BenchmarkTable6_StreamSweep(b *testing.B) {
	b.ReportAllocs()
	tasks := stream.GFTaskSet(64, 9.32, 0.082)
	for i := 0; i < b.N; i++ {
		_ = stream.Sweep(tasks, []int{1, 2, 4, 16, 32})
	}
}

// ── Table 7: multiplication methods ──

func benchSparsePair(n int) (*linalg.Matrix, *linalg.Matrix) {
	rng := rand.New(rand.NewSource(7))
	sp := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.05 {
				sp.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
	}
	dn := linalg.New(n, n)
	for i := range dn.Data {
		dn.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return sp, dn
}

func BenchmarkTable7_DenseGEMM(b *testing.B) {
	b.ReportAllocs()
	sp, dn := benchSparsePair(192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linalg.Mul(sp, dn)
	}
}

func BenchmarkTable7_CSRMM_NN(b *testing.B) {
	b.ReportAllocs()
	spD, dn := benchSparsePair(192)
	sp := sparse.FromDense(spD, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.CSRMM(sp, linalg.NoTrans, dn, linalg.NoTrans)
	}
}

func BenchmarkTable7_CSRMM_NT(b *testing.B) {
	b.ReportAllocs()
	spD, dn := benchSparsePair(192)
	sp := sparse.FromDense(spD, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.CSRMM(sp, linalg.NoTrans, dn, linalg.Trans)
	}
}

func BenchmarkTable7_CSRMM_TN(b *testing.B) {
	b.ReportAllocs()
	spD, dn := benchSparsePair(192)
	sp := sparse.FromDense(spD, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.CSRMM(sp, linalg.Trans, dn, linalg.NoTrans)
	}
}

func BenchmarkTable7_GEMMI(b *testing.B) {
	b.ReportAllocs()
	spD, dn := benchSparsePair(192)
	spc := sparse.FromDense(spD, 0).ToCSC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.GEMMI(dn, spc)
	}
}

// ── Table 8: the F·gR·E three-matrix product ──

func BenchmarkTable8_GEMMGEMM(b *testing.B) {
	b.ReportAllocs()
	f, g := benchSparsePair(192)
	e, _ := benchSparsePair(192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linalg.Mul(linalg.Mul(f, g), e)
	}
}

func BenchmarkTable8_CSRMM_GEMMI(b *testing.B) {
	b.ReportAllocs()
	fD, g := benchSparsePair(192)
	eD, _ := benchSparsePair(192)
	f := sparse.FromDense(fD, 0)
	e := sparse.FromDense(eD, 0).ToCSC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg := sparse.CSRMM(f, linalg.NoTrans, g, linalg.NoTrans)
		_ = sparse.GEMMI(fg, e)
	}
}

func BenchmarkTable8_CSRMM_CSRMM(b *testing.B) {
	b.ReportAllocs()
	fD, g := benchSparsePair(192)
	eD, _ := benchSparsePair(192)
	f := sparse.FromDense(fD, 0)
	eT := sparse.FromDense(eD, 0).Transpose()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg := sparse.CSRMM(f, linalg.NoTrans, g, linalg.NoTrans)
		_ = sparse.CSRMM(eT, linalg.NoTrans, fg, linalg.Trans)
	}
}

// ── Table 9: SBSMM vs padded batched GEMM ──

func benchBatch(n, count int) (a, bb, c []complex128) {
	rng := rand.New(rand.NewSource(9))
	mk := func() []complex128 {
		v := make([]complex128, n*n*count)
		for i := range v {
			v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return v
	}
	return mk(), mk(), make([]complex128, n*n*count)
}

func BenchmarkTable9_Padded(b *testing.B) {
	b.ReportAllocs()
	a, bb, c := benchBatch(12, 4096)
	b.SetBytes(int64(len(a) * 16 * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.SBSMMPadded(c, a, bb, 12, 4096)
	}
}

func BenchmarkTable9_SBSMM(b *testing.B) {
	b.ReportAllocs()
	a, bb, c := benchBatch(12, 4096)
	b.SetBytes(int64(len(a) * 16 * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.SBSMM(c, a, bb, 12, 4096)
	}
}

func BenchmarkTable9_SBSMMHalf(b *testing.B) {
	b.ReportAllocs()
	a, bb, c := benchBatch(12, 4096)
	ha := batch.EncodeHalf(a, 12, 4096)
	hb := batch.EncodeHalf(bb, 12, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.SBSMMHalf(c, ha, hb)
	}
}

// ── Table 10: single-node GF and SSE phases ──

func BenchmarkTable10_GFPhase(b *testing.B) {
	b.ReportAllocs()
	s := negf.New(benchDevice(), negf.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.GFPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable10_SSE_OMEN(b *testing.B) {
	b.ReportAllocs()
	in := benchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (sse.OMEN{}).Compute(in)
	}
}

func BenchmarkTable10_SSE_DaCe(b *testing.B) {
	b.ReportAllocs()
	in := benchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (sse.DaCe{}).Compute(in)
	}
}

// ── Tables 11–12 and Figs 8–9: scaling model ──

func BenchmarkTable11_Breakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Table11()
	}
}

func BenchmarkTable12_PerAtom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Table12()
	}
}

func BenchmarkFigure8_ScalingModel(b *testing.B) {
	b.ReportAllocs()
	m := model.Summit()
	for i := 0; i < b.N; i++ {
		_ = model.StrongScaling(m, []int{114, 500, 1000, 1400})
		_ = model.WeakScaling(m, []int{3, 5, 7, 9, 11})
	}
}

func BenchmarkFigure9_ExtremeScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.Figure9([]int{3420, 6840, 13680, 27360})
	}
}

// ── Fig 7: mixed-precision SSE ──

func BenchmarkFigure7_SSEMixed(b *testing.B) {
	b.ReportAllocs()
	in := benchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (sse.Mixed{Normalize: true}).Compute(in)
	}
}

// ── Fig 10: roofline ──

func BenchmarkFigure10_Roofline(b *testing.B) {
	b.ReportAllocs()
	p := device.Large(21)
	for i := 0; i < b.N; i++ {
		_ = model.Roofline(p)
	}
}

// ── Fig 11: the full self-consistent electro-thermal solve ──

func BenchmarkFigure11_SelfConsistentIteration(b *testing.B) {
	b.ReportAllocs()
	dev := benchDevice()
	s := negf.New(dev, negf.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.GFPhase(); err != nil {
			b.Fatal(err)
		}
		s.SSEPhase()
	}
}

// BenchmarkNEGFIteration is the canonical hot-loop benchmark: one full
// sequential GF↔SSE self-consistent iteration (all electron and phonon
// RGF solves, the DaCe SSE kernel, and the Σ≷/Π≷ mixing). allocs/op here
// is the headline number of the workspace-pooled kernels — see the
// README performance section and BENCH_5.json for the tracked trajectory.
func BenchmarkNEGFIteration(b *testing.B) {
	b.ReportAllocs()
	s := negf.New(benchDevice(), negf.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.GFPhase(); err != nil {
			b.Fatal(err)
		}
		s.SSEPhase()
	}
}

// ── distributed end-to-end loop (internal/dist) ──

// BenchmarkDistributedLoop runs the full GF↔SSE self-consistent loop on
// 4 simulated ranks for two iterations — the end-to-end cost the paper's
// distributed solver pays per convergence step.
func BenchmarkDistributedLoop(b *testing.B) {
	b.ReportAllocs()
	dev := benchDevice()
	opts := dist.DefaultOptions(4)
	opts.MaxIter = 2
	opts.Tol = 1e-300
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := dist.Run(dev, opts)
		if err != nil && !errors.Is(err, negf.ErrNotConverged) {
			b.Fatal(err)
		}
		bytes = res.Comm.BytesSent
	}
	b.ReportMetric(float64(bytes), "bytes/run")
}

// ── §7.1.1: data ingestion ──

func BenchmarkIngestion_ChunkedBcast(b *testing.B) {
	b.ReportAllocs()
	data := make([]complex128, 1<<14)
	b.SetBytes(int64(len(data) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := staging.ChunkedBcast(comm.NewWorld(8), data, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
